//! Observability demo: run a seeded quicksort (partask + pyjama) and a
//! fault-injected web crawl (websim) with the `parc-trace` collector
//! attached, write a Chrome-trace JSON next to `target/`, and print the
//! ASCII timeline, event counts and metrics that the teaching reports
//! embed.
//!
//! Run with: `cargo run --release --example trace_viewer [out.trace.json]`
//!
//! Load the emitted file in `chrome://tracing` or
//! <https://ui.perfetto.dev>: one process per runtime (partask, pyjama,
//! websim), one thread per worker, `B`/`E` span pairs for task bodies,
//! barrier waits and fetch attempts, instants for steals, retries and
//! injected faults.

use std::sync::Arc;
use std::time::Duration;

use faultsim::{FaultInjector, FaultPlan, RetryPolicy};
use parc_trace::{render_event_counts, render_timeline, to_chrome_json, Collector};
use parsort::{data, quicksort_partask};
use partask::TaskRuntime;
use pyjama::{Schedule, Team};
use websim::{try_fetch_all, ServerConfig, SimServer};

fn main() {
    // The crawl injects panics on purpose; keep them out of stderr.
    faultsim::silence_injected_panics();
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "target/trace_viewer.trace.json".to_string());
    let collector = Collector::new();
    let trace = collector.handle();

    // --- Workload 1: seeded quicksort on the task runtime.
    let rt = TaskRuntime::builder()
        .workers(4)
        .name("partask")
        .trace(&trace)
        .build();
    let mut v = data::random(200_000, 0xC0FFEE);
    quicksort_partask(&rt, &mut v);
    assert!(v.windows(2).all(|w| w[0] <= w[1]));

    // --- Workload 2: a worksharing region with barriers on a team.
    let team = Team::with_trace(4, &trace);
    let sums: Vec<std::sync::atomic::AtomicU64> =
        (0..4).map(|_| std::sync::atomic::AtomicU64::new(0)).collect();
    team.parallel(|ctx| {
        ctx.pfor(0..10_000, Schedule::Dynamic(512), |i: usize| {
            sums[i % 4].fetch_add(i as u64, std::sync::atomic::Ordering::Relaxed);
        });
        ctx.barrier();
    });

    // --- Workload 3: fault-injected crawl with per-page retries.
    let server = Arc::new(
        SimServer::with_faults(
            ServerConfig {
                pages: 40,
                time_scale: 2e-5,
                ..ServerConfig::default()
            },
            FaultInjector::new(
                FaultPlan::reliable(42)
                    .with_error_rate(0.2)
                    .with_panic_rate(0.05),
            ),
        )
        .with_trace(&trace),
    );
    let policy = RetryPolicy::fixed(Duration::from_millis(1)).with_max_attempts(6);
    let outcome = try_fetch_all(&rt, &server, 6, &policy);
    rt.shutdown();

    // --- Export: Chrome trace + terminal views.
    let snapshot = collector.snapshot();
    let json = to_chrome_json(&snapshot);
    validate_chrome_trace(&json);
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    std::fs::write(&out_path, &json).expect("write trace file");

    println!("# E-obs: one instrumented run, three runtimes\n");
    println!(
        "crawl: {}/{} pages ok, {} attempts ({} retries, {} transient, {} panics contained)\n",
        outcome.succeeded,
        outcome.report.pages,
        outcome.attempts_total,
        outcome.retries,
        outcome.transient_errors,
        outcome.panics,
    );
    if snapshot.dropped > 0 {
        println!(
            "WARNING: {} event(s) dropped to ring overflow — raise the per-thread \
             capacity (Collector::with_thread_capacity) for complete spans\n",
            snapshot.dropped,
        );
    }
    println!("{}", render_timeline(&snapshot, 64));
    println!("{}", render_event_counts(&snapshot));
    println!("{}", collector.metrics().render());
    println!(
        "wrote {} trace events to {out_path} — load it in chrome://tracing or ui.perfetto.dev",
        snapshot.len(),
    );
}

/// Shape-check the export with the in-repo JSON parser before writing:
/// it must round-trip, and `B`/`E` span pairs must balance per lane —
/// the property that makes the viewer nest spans as durations. CI runs
/// this example and relies on the process failing here if the exporter
/// regresses.
fn validate_chrome_trace(json: &str) {
    use std::collections::BTreeMap;
    let doc = parc_trace::parse_json(json).expect("trace must be valid JSON");
    let events = doc
        .get("traceEvents")
        .expect("traceEvents key")
        .as_arr()
        .expect("traceEvents must be an array");
    let mut depth: BTreeMap<(i64, i64), i64> = BTreeMap::new();
    for ev in events {
        let pid = ev.get("pid").unwrap().as_f64().unwrap() as i64;
        let tid = ev.get("tid").unwrap().as_f64().unwrap() as i64;
        match ev.get("ph").unwrap().as_str().unwrap() {
            "B" => *depth.entry((pid, tid)).or_insert(0) += 1,
            "E" => {
                let d = depth.entry((pid, tid)).or_insert(0);
                *d -= 1;
                assert!(*d >= 0, "lane ({pid},{tid}): E without matching B");
            }
            _ => {}
        }
    }
    assert!(
        depth.values().all(|&d| d == 0),
        "unbalanced span pairs: {depth:?}"
    );
    println!("trace validated: {} entries, span pairs balanced\n", events.len());
}
