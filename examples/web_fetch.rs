//! Project 10 (experiment E10): how many concurrent connections?
//!
//! Downloads a simulated page set with pool sizes 1..64 and prints the
//! measured wall time next to the analytic model's prediction: both
//! fall steeply, bottom out, and rise again once connections oversubscribe
//! the server — the project's research answer.
//!
//! A second section exercises the **fault-tolerant crawler** variant:
//! the same download against a server injecting deterministic
//! transient errors, timeouts and panics, with per-page retry under
//! exponential backoff — printing the retry/degradation accounting.
//!
//! Run with: `cargo run --release --example web_fetch`

use std::sync::Arc;

use parc_util::Table;
use softeng751::catalogue::fault_tolerant_crawl;
use softeng751::prelude::*;
use websim::{fetch_all, predict_fetch_sim_ms, ServerConfig, SimServer};

fn main() {
    // The chaos section injects panics on purpose; keep them out of
    // the report (the crawler contains them per-attempt).
    faultsim::silence_injected_panics();
    let sizes = [1usize, 2, 4, 8, 16, 24, 32, 48, 64];
    let rt = TaskRuntime::builder()
        .workers(*sizes.iter().max().unwrap())
        .build();
    let server = Arc::new(SimServer::new(ServerConfig {
        pages: 200,
        time_scale: 1e-5, // 10 µs wall per simulated ms
        ..ServerConfig::default()
    }));
    println!(
        "server: {} pages, rtt {:?} ms, bandwidth {} KB/ms, {} connection slots\n",
        server.page_count(),
        server.config().rtt_range,
        server.config().bandwidth_kb_per_ms,
        server.config().max_concurrent
    );

    let mut table = Table::new(
        "E10: connection-count sweep",
        &["connections", "measured ms", "model sim-ms", "KB/s"],
    );
    let mut best = (0usize, f64::INFINITY);
    for &k in &sizes {
        let report = fetch_all(&rt, &server, k);
        let wall_ms = report.elapsed.as_secs_f64() * 1e3;
        if wall_ms < best.1 {
            best = (k, wall_ms);
        }
        table.row(&[
            k.to_string(),
            format!("{wall_ms:.1}"),
            format!("{:.0}", predict_fetch_sim_ms(&server, k)),
            format!("{:.0}", report.kb_per_sec()),
        ]);
    }
    println!("{}", table.render());
    println!(
        "optimal pool size ~= {} connections ({}.1 ms); too few leaves the link idle,\n\
         too many splits bandwidth thin and trips the server's queue penalty.",
        best.0, best.1 as u64
    );

    // --- fault-tolerant crawler variant -------------------------------
    let mut chaos_table = Table::new(
        "E10b: fault-tolerant crawler on a flaky server (seeded)",
        &["seed", "pages ok", "failed", "attempts", "retries", "transient", "timeouts", "panics"],
    );
    for seed in [0xC4A0_17E5u64, 0xDEAD_BEEF, 42] {
        let outcome = fault_tolerant_crawl(&rt, seed, 8);
        chaos_table.row(&[
            format!("{seed:#x}"),
            outcome.succeeded.to_string(),
            outcome.failed_pages.len().to_string(),
            outcome.attempts_total.to_string(),
            outcome.retries.to_string(),
            outcome.transient_errors.to_string(),
            outcome.timeouts.to_string(),
            outcome.panics.to_string(),
        ]);
    }
    println!("\n{}", chaos_table.render());
    println!(
        "every fault above is a pure function of (seed, page, attempt): rerun the example\n\
         and the accounting repeats bit-for-bit, whatever the connection interleaving."
    );
    rt.shutdown();
}
