//! Project 8's deliverable: the full memory-model teaching write-up,
//! regenerated with fresh executed evidence, plus the contribution-
//! assessment demo (subversion logs + peer evaluations).
//!
//! Run with: `cargo run --release --example teaching_report`

use course::repo::{decide_marks, synth_log, MarkDecision, PeerEvaluation};
use memmodel::report::{build_report, cost_appendix};

/// The observability sidebar: the same runtimes the write-up reasons
/// about, but *watched* — a traced quicksort whose event counts and
/// scheduler metrics students can line up against the task-graph
/// pictures in the lecture notes.
fn observability_sidebar() {
    use parc_trace::Collector;
    use parsort::{data, quicksort_partask};
    use partask::TaskRuntime;

    let collector = Collector::new();
    let rt = TaskRuntime::builder()
        .workers(4)
        .name("partask")
        .trace(&collector.handle())
        .build();
    let mut v = data::random(100_000, 0x751);
    quicksort_partask(&rt, &mut v);
    rt.shutdown();
    let trace = collector.snapshot();

    println!("\n# Seeing the parallelism (observability sidebar)\n");
    println!(
        "Every claim above is also *observable*: the runtimes record typed\n\
         events (task spawn/run/steal, barrier waits, chunk dispatches) into\n\
         lock-free per-thread buffers. The quicksort that just ran produced\n\
         the counts below; `cargo run --release --example trace_viewer`\n\
         writes the full Chrome trace for chrome://tracing / Perfetto.\n"
    );
    println!("{}", parc_trace::render_event_counts(&trace));
    println!("{}", collector.metrics().render());

    // Critical-path view of the same run: which chain of tasks bounded
    // the wall clock, and where the time actually went per span kind.
    // `cargo run --release --example trace_inspect` is the full E-DEBUG
    // driver with determinism gates and JSON export.
    let (_store, graph, report) = parc_inspect::analyze(trace);
    println!(
        "reconstructed task graph: {} nodes, {} edges (spawn tree + joins)\n",
        graph.node_count(),
        graph.edge_count(),
    );
    println!("{}", report.render());
}

fn main() {
    println!("# Understanding and coping with the memory model\n");
    println!("(SoftEng 751 project 8 — every evidence line below was just executed)\n");
    for topic in build_report() {
        println!("{}", topic.render());
    }
    println!("{}", cost_appendix());

    println!("\n# Contribution assessment (Sections III-C / IV-A)\n");
    for (label, balanced) in [("balanced group", true), ("carried-by-one group", false)] {
        let log = synth_log(3, 80, balanced, 0x5C3);
        let peers = if balanced {
            PeerEvaluation::new(vec![vec![0, 5, 4], vec![5, 0, 5], vec![4, 5, 0]])
        } else {
            PeerEvaluation::new(vec![vec![0, 4, 2], vec![5, 0, 2], vec![4, 4, 0]])
        };
        let shares: Vec<String> = log.shares().iter().map(|s| format!("{:.0}%", s * 100.0)).collect();
        println!(
            "{label}: {} commits, shares [{}], gini {:.2}",
            log.len(),
            shares.join(", "),
            log.gini()
        );
        match decide_marks(&log, &peers, 0.3, 3.0) {
            MarkDecision::Equal => println!("  -> equal marks (the paper: 'in most cases')\n"),
            MarkDecision::Adjusted(m) => {
                let mult: Vec<String> = m.iter().map(|x| format!("{x:.2}")).collect();
                println!("  -> adjusted multipliers [{}]\n", mult.join(", "));
            }
        }
    }

    observability_sidebar();
}
