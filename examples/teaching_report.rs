//! Project 8's deliverable: the full memory-model teaching write-up,
//! regenerated with fresh executed evidence, plus the contribution-
//! assessment demo (subversion logs + peer evaluations).
//!
//! Run with: `cargo run --release --example teaching_report`

use course::repo::{decide_marks, synth_log, MarkDecision, PeerEvaluation};
use memmodel::report::{build_report, cost_appendix};

fn main() {
    println!("# Understanding and coping with the memory model\n");
    println!("(SoftEng 751 project 8 — every evidence line below was just executed)\n");
    for topic in build_report() {
        println!("{}", topic.render());
    }
    println!("{}", cost_appendix());

    println!("\n# Contribution assessment (Sections III-C / IV-A)\n");
    for (label, balanced) in [("balanced group", true), ("carried-by-one group", false)] {
        let log = synth_log(3, 80, balanced, 0x5C3);
        let peers = if balanced {
            PeerEvaluation::new(vec![vec![0, 5, 4], vec![5, 0, 5], vec![4, 5, 0]])
        } else {
            PeerEvaluation::new(vec![vec![0, 4, 2], vec![5, 0, 2], vec![4, 4, 0]])
        };
        let shares: Vec<String> = log.shares().iter().map(|s| format!("{:.0}%", s * 100.0)).collect();
        println!(
            "{label}: {} commits, shares [{}], gini {:.2}",
            log.len(),
            shares.join(", "),
            log.gini()
        );
        match decide_marks(&log, &peers, 0.3, 3.0) {
            MarkDecision::Equal => println!("  -> equal marks (the paper: 'in most cases')\n"),
            MarkDecision::Adjusted(m) => {
                let mult: Vec<String> = m.iter().map(|x| format!("{x:.2}")).collect();
                println!("  -> adjusted multipliers [{}]\n", mult.join(", "));
            }
        }
    }
}
