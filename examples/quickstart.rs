//! Quickstart: the three pillars of the reproduction in one tour —
//! task parallelism (partask), OpenMP-style worksharing (pyjama) and
//! GUI-aware concurrency (guievent).
//!
//! Run with: `cargo run --release --example quickstart`

use softeng751::prelude::*;

fn main() {
    println!("== SoftEng 751 reproduction: quickstart ==\n");

    // --- Parallel Task analogue: futures, dependences, multi-tasks.
    let rt = TaskRuntime::builder().workers(4).build();
    let a = rt.spawn(|| (1..=20u64).sum::<u64>());
    let b = rt.spawn(|| (1..=10u64).product::<u64>());
    let after = rt.spawn_after(&[a.watcher(), b.watcher()], || "both predecessors done");
    println!("task a (sum 1..=20)      = {}", a.join().unwrap());
    println!("task b (10!)             = {}", b.join().unwrap());
    println!("dependent task           = {}", after.join().unwrap());

    let multi = rt.spawn_multi(8, |i| i * i);
    println!("multi-task squares       = {:?}", multi.join_all().unwrap());

    // --- Pyjama analogue: parallel regions, schedules, reductions.
    let team = Team::new(4);
    let data: Vec<f64> = (0..100_000).map(|i| f64::from(i as u32).sqrt()).collect();
    let total = team.par_reduce(0..data.len(), Schedule::Static, &SumRed, |i| data[i]);
    println!("pyjama sum of sqrt       = {total:.2}");
    let maxv = team.par_reduce(0..data.len(), Schedule::Dynamic(1024), &MaxRed, |i| data[i]);
    println!("pyjama max (dynamic)     = {maxv:.3}");

    // Object-oriented reduction: merge per-iteration maps.
    let red = MapMerge::new(|x: u64, y: u64| x + y);
    let histogram: std::collections::HashMap<u64, u64> =
        team.par_reduce(0..10_000, Schedule::Guided(64), &red, |i| {
            let mut m = std::collections::HashMap::new();
            m.insert((i % 7) as u64, 1);
            m
        });
    println!("OO reduction histogram   = {histogram:?}");

    // --- GUI awareness: deliver a result to the event-dispatch thread.
    let gui = EventLoop::spawn();
    let handle = gui.handle();
    let task = rt.spawn(|| {
        // pretend this is a long computation
        (0..1_000_000u64).sum::<u64>()
    });
    let edt_probe = handle.clone();
    task.deliver(&handle, move |result| {
        assert!(edt_probe.is_dispatch_thread());
        println!("delivered on the EDT     = {}", result.unwrap());
    });
    rt.wait_quiescent();
    gui.handle().drain();

    println!("\nruntime stats: {:?}", rt.stats());
    rt.shutdown();
    gui.shutdown();
    println!("done.");
}
