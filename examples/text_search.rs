//! Project 4 (experiment E4): parallel string/regex search over a
//! folder tree with live interim results.
//!
//! Run with: `cargo run --release --example text_search`

use docsearch::corpus::{generate_tree, CorpusConfig};
use docsearch::{search_folder, Match, Query, Regex};
use parc_util::Table;
use softeng751::prelude::*;

fn main() {
    let rt = TaskRuntime::builder().workers(4).build();
    let gui = EventLoop::spawn();

    let cfg = CorpusConfig {
        files_per_dir: 10,
        dirs_per_level: 3,
        depth: 2,
        lines_per_file: 60,
        needle: "concurrency bug".into(),
        needle_rate: 0.01,
        ..CorpusConfig::default()
    };
    let (tree, planted) = generate_tree(&cfg);
    println!(
        "corpus: {} files, {} KB, {} planted occurrences of {:?}\n",
        tree.file_count(),
        tree.total_bytes() / 1024,
        planted,
        cfg.needle
    );

    // Live results marshalled to the EDT, like the GUI list filling in.
    let (tx, rx) = interim_channel::<Match>();
    let shown = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
    let shown2 = std::sync::Arc::clone(&shown);
    rx.forward_to_gui(&gui.handle(), move |m| {
        let n = shown2.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        if n < 5 {
            println!("  [live] {}:{} col {}", m.path, m.line_no, m.column);
        }
    });

    let report = search_folder(&rt, &tree, &Query::literal(&cfg.needle), Some(&tx), None);
    gui.handle().drain();
    println!(
        "\nliteral search: {} matches in {} files (expected {planted}), {} streamed live",
        report.matches.len(),
        report.files_searched,
        shown.load(std::sync::atomic::Ordering::Relaxed)
    );

    // Regex query over the same corpus.
    let regex = Regex::new(r"parallel (task|core)").expect("valid pattern");
    let re_report = search_folder(&rt, &tree, &Query::regex(regex), None, None);
    let mut table = Table::new("E4: query comparison", &["query", "matches"]);
    table.row(&[format!("literal {:?}", cfg.needle), report.matches.len().to_string()]);
    table.row(&["regex 'parallel (task|core)'".to_string(), re_report.matches.len().to_string()]);
    println!("\n{}", table.render());

    // Cancellation path: a pre-cancelled search does no work.
    let cancel = CancelToken::new();
    cancel.cancel();
    let cancelled = search_folder(&rt, &tree, &Query::literal("x"), None, Some(&cancel));
    println!(
        "cancelled search visited {} files and returned {} matches (cancelled = {})",
        cancelled.files_searched,
        cancelled.matches.len(),
        cancelled.cancelled
    );

    rt.shutdown();
    gui.shutdown();
}
