//! Project 1 (experiment E1): thumbnail gallery with a responsive GUI.
//!
//! Renders a synthetic image folder under every parallelisation
//! strategy, streams finished thumbnails to the event-dispatch thread
//! as they complete, and measures GUI dispatch latency throughout.
//!
//! Run with: `cargo run --release --example thumbnail_gallery`

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use imaging::{gen, render_gallery, GalleryConfig, Strategy};
use parc_util::{Stopwatch, Table};
use softeng751::prelude::*;

fn main() {
    let rt = TaskRuntime::builder().workers(4).build();
    let team = Team::new(4);
    let gui = EventLoop::spawn();

    let images = Arc::new(gen::generate_folder(24, 64, 192, 0xA11CE));
    println!(
        "gallery: {} synthetic images, {}..{} px per side\n",
        images.len(),
        64,
        192
    );

    let mut table = Table::new(
        "E1: thumbnail gallery strategies (128x128 box filter)",
        &["strategy", "render ms", "gui p50 ms", "gui worst ms", "delivered"],
    );

    for strategy in [
        Strategy::Sequential,
        Strategy::TaskPerImage,
        Strategy::MultiTask(4),
        Strategy::PyjamaDynamic(2),
        Strategy::PyjamaStatic,
    ] {
        let cfg = GalleryConfig {
            thumb_w: 128,
            thumb_h: 128,
            strategy,
            ..GalleryConfig::default()
        };
        // Stream each finished thumbnail to the EDT, like the Swing
        // gallery updating while the user scrolls.
        let delivered = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = interim_channel::<(usize, imaging::Image)>();
        let delivered2 = Arc::clone(&delivered);
        rx.forward_to_gui(&gui.handle(), move |(_idx, _thumb)| {
            // "display" the thumbnail
            delivered2.fetch_add(1, Ordering::Relaxed);
        });
        let probe = Probe::start(gui.handle(), std::time::Duration::from_millis(1));
        let sw = Stopwatch::start();
        let report = render_gallery(&images, &cfg, &rt, &team, Some(&tx));
        let ms = sw.elapsed_ms();
        gui.handle().drain();
        let resp = probe.finish();
        table.row(&[
            report.strategy.clone(),
            format!("{ms:.1}"),
            format!("{:.2}", resp.summary().median()),
            format!("{:.2}", resp.worst_ms()),
            delivered.load(Ordering::Relaxed).to_string(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "note: single-CPU container — strategies differ in overhead, not speedup;\n\
         the GUI latency columns show the EDT never blocks either way."
    );

    rt.shutdown();
    gui.shutdown();
}
