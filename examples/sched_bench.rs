//! E-SCHED: scheduler fan-out throughput and steal latency.
//!
//! Measures the lock-free Chase–Lev runtime core against the
//! `Mutex<VecDeque>` substrate it replaced (still available as
//! [`SchedulerKind::WorkStealingLocked`] — the ablation baseline), at
//! 1/2/4/8 workers:
//!
//! * `locked-spawn`   — baseline: per-task `spawn` onto the locked
//!   deques, one injector lock + one boxed closure + one
//!   `Arc<Mutex<Core>>` per task.
//! * `lockfree-spawn` — the same per-task protocol on the Chase–Lev
//!   deques (isolates the deque swap).
//! * `lockfree-batch` — `spawn_batch`: one injector episode and one
//!   completion structure for the whole 10k-task fan-out (the spawn
//!   path the tentpole adds).
//! * `fanout-*`       — the fan-out issued from *inside* a worker
//!   task, so the jobs land on one worker's own deque and every other
//!   worker must steal: this is what populates the steal-latency
//!   trajectory (p50/p99 of time-to-acquire-work per steal episode).
//!
//! Artifact: first argument (default `BENCH_runtime.json`) — one
//! record per (variant, workers) with throughput, steal latency and a
//! *deterministic accounting block* (spawned/executed/pending), plus
//! the computed batch-vs-baseline speedups. The CI determinism gate
//! reruns this and diffs everything except the wall-clock fields.
//!
//! Run with: `cargo run --release --example sched_bench`

use std::fmt::Write as _;
use std::thread;
use std::time::{Duration, Instant};

use partask::{SchedulerKind, TaskRuntime};
use parc_util::Table;

const TASKS: usize = 10_000;
const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// The measured body: a short pseudo-random spin so a task is cheap
/// but not empty (an empty body over-rewards the batch path).
fn busy_work(seed: u64) -> u64 {
    let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    for _ in 0..32 {
        x = x.wrapping_mul(x).rotate_left(7);
    }
    x & 1
}

struct Run {
    variant: &'static str,
    workers: usize,
    elapsed_ms: f64,
    tasks_per_sec: f64,
    steal_episodes: u64,
    steal_p50_ms: f64,
    steal_p99_ms: f64,
    spawned: u64,
    executed: u64,
    pending_after: usize,
}

fn build(kind: SchedulerKind, workers: usize) -> TaskRuntime {
    TaskRuntime::builder()
        .workers(workers)
        .scheduler(kind)
        .name("sched-bench")
        .build()
}

/// Per-task spawn of `TASKS` trivial tasks from this thread, then
/// quiescence. The spawn path is the measured object, so handles are
/// deliberately not retained (results resolve into their cores).
fn run_spawn(variant: &'static str, kind: SchedulerKind, workers: usize) -> Run {
    let rt = build(kind, workers);
    let started = Instant::now();
    for i in 0..TASKS {
        drop(rt.spawn(move || busy_work(i as u64)));
    }
    rt.wait_quiescent();
    finish(variant, workers, started, rt)
}

/// One `spawn_batch` episode for the whole fan-out.
fn run_batch(variant: &'static str, kind: SchedulerKind, workers: usize) -> Run {
    let rt = build(kind, workers);
    let started = Instant::now();
    let batch = rt.spawn_batch(TASKS, |i| busy_work(i as u64));
    batch.wait();
    rt.wait_quiescent();
    finish(variant, workers, started, rt)
}

/// Fan out from inside a worker task: children land on that worker's
/// own deque, so every task a *different* worker runs was stolen.
///
/// The root handle must not be help-joined from this thread (and
/// neither `join` nor `wait_quiescent` may run before the pool is
/// done): a helping join pops the root job out of the injector and
/// runs it on *this* (external) thread, where the children go back
/// through the injector instead of a worker deque and no steal ever
/// happens. A non-helping poll of the packed progress word guarantees
/// a pool worker ran the root, which is the whole point of the
/// variant.
fn run_fanout(variant: &'static str, kind: SchedulerKind, workers: usize) -> Run {
    let rt = build(kind, workers);
    let rth = rt.handle();
    let started = Instant::now();
    let root = rt.spawn(move || {
        let handles: Vec<_> =
            (0..TASKS).map(|i| rth.spawn(move || busy_work(i as u64))).collect();
        handles.into_iter().for_each(|h| {
            let _ = h.join();
        });
    });
    while rt.progress().pending != 0 {
        thread::sleep(Duration::from_micros(200));
    }
    root.join().expect("fanout root");
    finish(variant, workers, started, rt)
}

fn finish(variant: &'static str, workers: usize, started: Instant, rt: TaskRuntime) -> Run {
    let elapsed = started.elapsed();
    let stats = rt.stats();
    let lat = rt.latencies();
    let progress = rt.progress();
    assert_eq!(
        progress.spawned,
        progress.finished + progress.pending as u64,
        "torn progress snapshot"
    );
    let run = Run {
        variant,
        workers,
        elapsed_ms: elapsed.as_secs_f64() * 1e3,
        tasks_per_sec: stats.executed as f64 / elapsed.as_secs_f64().max(1e-9),
        steal_episodes: lat.steal_wait_ms.total(),
        steal_p50_ms: lat.steal_wait_ms.p50(),
        steal_p99_ms: lat.steal_wait_ms.p99(),
        spawned: stats.spawned,
        executed: stats.executed,
        pending_after: rt.queued_hint(),
    };
    rt.shutdown();
    run
}

fn main() {
    let bench_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_runtime.json".to_string());

    println!("== E-SCHED: fan-out throughput, {TASKS} tasks per run ==\n");

    let mut runs: Vec<Run> = Vec::new();
    for &workers in &WORKER_COUNTS {
        runs.push(run_spawn("locked-spawn", SchedulerKind::WorkStealingLocked, workers));
        runs.push(run_spawn("lockfree-spawn", SchedulerKind::WorkStealing, workers));
        runs.push(run_batch("lockfree-batch", SchedulerKind::WorkStealing, workers));
        runs.push(run_fanout("fanout-locked", SchedulerKind::WorkStealingLocked, workers));
        runs.push(run_fanout("fanout-lockfree", SchedulerKind::WorkStealing, workers));
    }

    let mut table = Table::new(
        "scheduler fan-out (10k tasks)",
        &["variant", "workers", "tasks/s", "elapsed ms", "steal eps", "steal p50 ms", "steal p99 ms"],
    );
    for r in &runs {
        assert_eq!(r.pending_after, 0, "{}/{}: not quiescent", r.variant, r.workers);
        assert_eq!(r.spawned, r.executed, "{}/{}: lost tasks", r.variant, r.workers);
        table.row(&[
            r.variant.to_string(),
            r.workers.to_string(),
            format!("{:.0}", r.tasks_per_sec),
            format!("{:.1}", r.elapsed_ms),
            r.steal_episodes.to_string(),
            format!("{:.3}", r.steal_p50_ms),
            format!("{:.3}", r.steal_p99_ms),
        ]);
    }
    println!("{}", table.render());

    let tps = |variant: &str, workers: usize| {
        runs.iter()
            .find(|r| r.variant == variant && r.workers == workers)
            .map(|r| r.tasks_per_sec)
            .expect("variant present")
    };
    let mut speedups = String::new();
    for (i, &w) in WORKER_COUNTS.iter().enumerate() {
        let batch = tps("lockfree-batch", w) / tps("locked-spawn", w);
        let spawn = tps("lockfree-spawn", w) / tps("locked-spawn", w);
        println!(
            "{w} workers: lockfree-batch {batch:.1}x, lockfree-spawn {spawn:.1}x vs locked baseline"
        );
        let _ = write!(
            speedups,
            "    {{ \"workers\": {w}, \"batch_vs_locked\": {batch:.2}, \"spawn_vs_locked\": {spawn:.2} }}{}",
            if i + 1 < WORKER_COUNTS.len() { ",\n" } else { "\n" }
        );
    }

    let mut records = String::new();
    for (i, r) in runs.iter().enumerate() {
        let _ = write!(
            records,
            concat!(
                "    {{ \"variant\": \"{}\", \"workers\": {}, ",
                "\"tasks_per_sec\": {:.1}, \"elapsed_ms\": {:.3}, ",
                "\"steal_episodes\": {}, \"steal_p50_ms\": {:.4}, \"steal_p99_ms\": {:.4}, ",
                "\"accounting\": {{ \"spawned\": {}, \"executed\": {}, \"pending_after\": {} }} }}{}"
            ),
            r.variant,
            r.workers,
            r.tasks_per_sec,
            r.elapsed_ms,
            r.steal_episodes,
            r.steal_p50_ms,
            r.steal_p99_ms,
            r.spawned,
            r.executed,
            r.pending_after,
            if i + 1 < runs.len() { ",\n" } else { "\n" }
        );
    }

    let bench = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"runtime\",\n",
            "  \"tasks_per_run\": {},\n",
            "  \"worker_counts\": [1, 2, 4, 8],\n",
            "  \"variants\": [\"locked-spawn\", \"lockfree-spawn\", \"lockfree-batch\", ",
            "\"fanout-locked\", \"fanout-lockfree\"],\n",
            "  \"runs\": [\n{}  ],\n",
            "  \"speedups\": [\n{}  ]\n",
            "}}\n"
        ),
        TASKS, records, speedups
    );
    std::fs::write(&bench_path, bench).expect("write BENCH_runtime.json");
    println!("\nbenchmark record -> {bench_path}");
}
