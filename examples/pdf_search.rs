//! Project 7 (experiment E7): paged-document search — the granularity
//! and worker-count sweep.
//!
//! Run with: `cargo run --release --example pdf_search`

use std::sync::Arc;

use docsearch::corpus::{generate_documents, CorpusConfig};
use docsearch::{search_documents, Granularity, Query};
use parc_util::{Stopwatch, Table};
use softeng751::prelude::*;

fn main() {
    let cfg = CorpusConfig {
        needle_rate: 0.015,
        ..CorpusConfig::default()
    };
    let (docs, planted) = generate_documents(60, 12, 24, &cfg);
    let docs = Arc::new(docs);
    let query = Query::literal(&cfg.needle);
    println!(
        "corpus: {} documents x {} pages, {planted} planted occurrences\n",
        docs.len(),
        docs[0].page_count()
    );

    let mut table = Table::new(
        "E7: granularity x workers",
        &["granularity", "workers", "tasks", "matches", "ms"],
    );
    for workers in [1usize, 2, 4] {
        let rt = TaskRuntime::builder().workers(workers).build();
        for g in [
            Granularity::PerDocument,
            Granularity::PerChunk(4),
            Granularity::PerPage,
        ] {
            let sw = Stopwatch::start();
            let report = search_documents(&rt, &docs, &query, g, None);
            let ms = sw.elapsed_ms();
            assert_eq!(report.total_matches, planted, "granularity changes nothing");
            table.row(&[
                g.label(),
                workers.to_string(),
                report.tasks_spawned.to_string(),
                report.total_matches.to_string(),
                format!("{ms:.1}"),
            ]);
        }
        rt.shutdown();
    }
    println!("{}", table.render());
    println!(
        "shape: finer granularity spawns more tasks (per-page = docs x pages);\n\
         on multicore hardware that buys balance at the tail — here (1 CPU) it\n\
         shows as pure task-overhead growth, the other half of the trade-off."
    );
}
