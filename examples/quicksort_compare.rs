//! Project 2 (experiment E2): quicksort across the three runtimes.
//!
//! Run with: `cargo run --release --example quicksort_compare`

use parc_util::{Stopwatch, Table};
use parsort::{data, quicksort_partask, quicksort_pyjama, quicksort_seq, quicksort_threads};
use softeng751::prelude::*;

fn main() {
    let rt = TaskRuntime::builder().workers(4).build();
    let team = Team::new(4);
    let mut table = Table::new(
        "E2: quicksort variants (ms, median of 3 runs)",
        &["n", "sequential", "partask", "pyjama", "threads", "std sort"],
    );

    for n in [1_000usize, 10_000, 100_000, 1_000_000] {
        let input = data::random(n, 0x5EED ^ n as u64);
        let median3 = |mut run: Box<dyn FnMut()>| -> f64 {
            let mut times = Vec::new();
            for _ in 0..3 {
                let sw = Stopwatch::start();
                run();
                times.push(sw.elapsed_ms());
            }
            times.sort_by(f64::total_cmp);
            times[1]
        };
        let seq_ms = median3(Box::new({
            let input = input.clone();
            move || {
                let mut v = input.clone();
                quicksort_seq(&mut v);
            }
        }));
        let partask_ms = median3(Box::new({
            let input = input.clone();
            let rt = &rt;
            move || {
                let mut v = input.clone();
                quicksort_partask(rt, &mut v);
            }
        }));
        let pyjama_ms = median3(Box::new({
            let input = input.clone();
            let team = &team;
            move || {
                let mut v = input.clone();
                quicksort_pyjama(team, &mut v);
            }
        }));
        let threads_ms = median3(Box::new({
            let input = input.clone();
            move || {
                let mut v = input.clone();
                quicksort_threads(&mut v, 3);
            }
        }));
        let std_ms = median3(Box::new({
            let input = input.clone();
            move || {
                let mut v = input.clone();
                v.sort_unstable();
            }
        }));
        table.row(&[
            n.to_string(),
            format!("{seq_ms:.2}"),
            format!("{partask_ms:.2}"),
            format!("{pyjama_ms:.2}"),
            format!("{threads_ms:.2}"),
            format!("{std_ms:.2}"),
        ]);
    }
    println!("{}", table.render());
    println!(
        "shape: below ~10k elements the parallel variants pay pure overhead\n\
         (spawn/bucket costs); the crossover would favour them on multicore\n\
         hardware — on this 1-CPU container they track the sequential sort."
    );
    rt.shutdown();
}
