//! The course-model report: regenerates Figure 1, Figure 2, the
//! assessment table (T1), the doodle-poll fairness study (E-ALLOC)
//! and the survey aggregation (E-SURVEY).
//!
//! Run with: `cargo run --release --example course_report`

use course::allocation::{fairness_summary, run_poll, AllocationConfig};
use course::assessment::AssessmentScheme;
use course::nexus::render_figure1;
use course::structure::render_figure2;
use course::survey::softeng751_survey;
use parc_util::Table;

fn main() {
    println!("== F1: the research-teaching nexus (Figure 1) ==\n");
    println!("{}", render_figure1());

    println!("\n== F2: course structure (Figure 2) ==\n");
    println!("{}", render_figure2());

    println!("== T1: assessment scheme (Section III-C) ==\n");
    let scheme = AssessmentScheme::softeng751();
    let mut t = Table::new("assessment", &["component", "weight %", "group work"]);
    for c in scheme.components() {
        t.row(&[
            c.name.to_string(),
            format!("{:.0}", c.weight),
            if c.group_work { "yes" } else { "no" }.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!(
        "group-work share: {:.0} % (the paper: only 25 % targets individual\n\
         understanding of lecture material)\n",
        scheme.group_weight()
    );

    println!("== E-ALLOC: first-in-first-served doodle poll (Section III-D) ==\n");
    let outcome = run_poll(&AllocationConfig::default());
    println!(
        "one run (20 groups, 10 topics x 2): first-choice {:.0} %, top-3 {:.0} %, mean rank {:.2}",
        100.0 * outcome.first_choice_rate(),
        100.0 * outcome.top_k_rate(3),
        outcome.mean_rank()
    );
    let mut t = Table::new(
        "fairness across 200 arrival orders",
        &["preference skew", "first-choice %", "top-3 %", "mean rank"],
    );
    for skew in [0.0, 1.5, 3.0] {
        let cfg = AllocationConfig {
            popularity_skew: skew,
            ..AllocationConfig::default()
        };
        let (first, top3, rank) = fairness_summary(&cfg, 200);
        t.row(&[
            format!("{skew:.1}"),
            format!("{:.1}", 100.0 * first),
            format!("{:.1}", 100.0 * top3),
            format!("{rank:.2}"),
        ]);
    }
    println!("{}", t.render());

    println!("== E-SURVEY: Likert evaluation (Section V-A) ==\n");
    let mut t = Table::new(
        "student evaluation (synthetic cohort of 60 calibrated to the paper's marginals)",
        &["question", "agree+ %", "mean /5", "distribution SD..SA"],
    );
    for q in softeng751_survey(0x2013) {
        t.row(&[
            q.text.clone(),
            format!("{:.0}", q.agreement_pct()),
            format!("{:.2}", q.mean_score()),
            format!("{:?}", q.distribution()),
        ]);
    }
    println!("{}", t.render());
    println!("paper reports: 95 % / 95 % / 92 % agreement on these three questions.");
}
