//! Experiment E-DEBUG: queryable traces, critical paths and
//! time-travel replay, with hard determinism gates.
//!
//! The driver runs the seeded quicksort + pyjama-barrier workload
//! under the collector, promotes the trace into a
//! [`parc_inspect::TraceStore`], rebuilds the task dependence graph
//! and checks, gate by gate:
//!
//! 1. **Rerun determinism** — same seed, same pool ⇒ bit-identical
//!    graph fingerprint and deterministic critical-path JSON.
//! 2. **Pool-size independence** — 1, 3 and 8 partask workers all
//!    reconstruct the *same* canonical graph and critical path.
//! 3. **Attribution sanity** — per-kind shares sum to ≤ 100% of
//!    capacity and the barrier demo shows a nonzero `barrier.wait`
//!    share.
//! 4. **Query = scan** — interval, kind and span-overlap queries
//!    agree with naive full scans of the same trace.
//! 5. **Replay determinism** — same explorer seed ⇒ empty
//!    [`parc_inspect::diff_schedules`]; replaying a recorded schedule
//!    reproduces it; a divergent seed pair pinpoints its first
//!    divergent decision; [`parc_inspect::TimeTravel`] walks the
//!    schedule to both ends consistently.
//!
//! Any violated gate makes the process exit non-zero — CI's `inspect`
//! job runs this binary as the E-DEBUG acceptance check.
//!
//! Artifacts:
//! * first argument (default `inspect_report.json`) — the full
//!   critical-path export (`deterministic` + `wall_clock` sections);
//! * second argument (default `BENCH_inspect.json`) — store-build,
//!   graph-build and query throughput on a ~480k-event synthetic
//!   trace, in events per second.
//!
//! Run with: `cargo run --release --example trace_inspect`

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parc_explore::replay::{record_seeded, replay};
use parc_explore::sync::PlainCell;
use parc_inspect::{diff_schedules, CriticalReport, TaskGraph, TimeTravel, TraceStore};
use parc_trace::{Collector, MarkKind, SpanKind, Trace};
use parc_util::rng::Xoshiro256;
use parsort::{data, quicksort_partask};
use partask::TaskRuntime;
use pyjama::{Schedule, Team};

/// The E-DEBUG workload: seeded quicksort on `workers` partask
/// workers, then a 4-member pyjama worksharing region with an
/// explicit barrier — all into one collector.
fn traced_run(workers: usize) -> Trace {
    let collector = Collector::new();
    let handle = collector.handle();

    let rt = TaskRuntime::builder()
        .workers(workers)
        .name("partask")
        .trace(&handle)
        .build();
    let mut v = data::random(200_000, 0xC0FFEE);
    quicksort_partask(&rt, &mut v);
    assert!(v.windows(2).all(|w| w[0] <= w[1]), "quicksort must sort");
    rt.shutdown();

    let team = Team::with_trace(4, &handle);
    let sums: Vec<AtomicU64> = (0..4).map(|_| AtomicU64::new(0)).collect();
    team.parallel(|ctx| {
        ctx.pfor(0..10_000, Schedule::Dynamic(512), |i: usize| {
            sums[i % 4].fetch_add(i as u64, Ordering::Relaxed);
        });
        ctx.barrier();
    });

    collector.snapshot()
}

/// Two simulated threads racing plain increments — the schedule-
/// sensitive body the replay gates explore.
fn racy_body() {
    let cell = Arc::new(PlainCell::new("count", 0i64));
    let mut handles = Vec::new();
    for _ in 0..2 {
        let cell = Arc::clone(&cell);
        handles.push(parc_explore::thread::spawn(move || {
            let v = cell.get();
            cell.set(v + 1);
        }));
    }
    for h in handles {
        h.join();
    }
    parc_explore::record("final", cell.get());
}

struct Gates {
    failures: Vec<String>,
}

impl Gates {
    fn check(&mut self, name: &str, ok: bool, detail: &str) {
        if ok {
            println!("  gate {name}: ok");
        } else {
            println!("  gate {name}: FAIL — {detail}");
            self.failures.push(format!("{name}: {detail}"));
        }
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let report_path = args.next().unwrap_or_else(|| "inspect_report.json".to_string());
    let bench_path = args.next().unwrap_or_else(|| "BENCH_inspect.json".to_string());
    let mut gates = Gates { failures: Vec::new() };

    println!("== E-DEBUG: trace inspection, critical paths, time travel ==\n");

    // --- The canonical run: 4 workers, full analysis, human report.
    let (store, graph, report) = parc_inspect::analyze(traced_run(4));
    println!(
        "canonical run: {} events -> {} nodes, {} edges\n",
        store.len(),
        graph.node_count(),
        graph.edge_count(),
    );
    println!("{}", report.render());

    // --- Gate 1: rerun determinism (same seed, same pool).
    println!("[1] rerun determinism");
    let (_, graph2, report2) = parc_inspect::analyze(traced_run(4));
    gates.check(
        "fingerprint-rerun",
        graph.fingerprint() == graph2.fingerprint(),
        &format!("0x{:016x} != 0x{:016x}", graph.fingerprint(), graph2.fingerprint()),
    );
    gates.check(
        "critical-path-rerun",
        report.deterministic_json() == report2.deterministic_json(),
        "deterministic JSON sections differ between reruns",
    );

    // --- Gate 2: pool-size independence.
    println!("\n[2] pool-size independence (1, 3, 8 workers)");
    for workers in [1usize, 3, 8] {
        let (_, g, r) = parc_inspect::analyze(traced_run(workers));
        gates.check(
            &format!("fingerprint-pool-{workers}"),
            g.fingerprint() == graph.fingerprint(),
            &format!(
                "workers={workers}: 0x{:016x} != canonical 0x{:016x}",
                g.fingerprint(),
                graph.fingerprint()
            ),
        );
        gates.check(
            &format!("critical-path-pool-{workers}"),
            r.deterministic_json() == report.deterministic_json(),
            &format!("workers={workers}: deterministic JSON differs"),
        );
    }

    // --- Gate 3: attribution sanity.
    println!("\n[3] attribution");
    let total_pct = report.attribution_total_pct();
    gates.check(
        "attribution-bounded",
        total_pct <= 100.0 + 1e-6,
        &format!("shares sum to {total_pct:.2}% > 100%"),
    );
    let barrier_pct = report.share_of("barrier.wait");
    gates.check(
        "barrier-share-nonzero",
        barrier_pct > 0.0,
        "quicksort+barrier demo attributed no barrier.wait time",
    );
    println!("  barrier.wait = {barrier_pct:.2}% of wall clock x lanes");

    // --- Gate 4: queries agree with naive scans.
    println!("\n[4] queries vs naive scans");
    query_gates(&mut gates, &store);

    // --- Gate 5: replay + diff determinism.
    println!("\n[5] schedule replay and diff");
    replay_gates(&mut gates);

    // --- Export the critical-path report.
    std::fs::write(&report_path, report.to_json()).expect("write inspect report");
    println!("\ncritical-path export -> {report_path}");

    // --- Throughput benchmark on a synthetic trace.
    let bench = bench_throughput();
    std::fs::write(&bench_path, bench).expect("write BENCH_inspect.json");
    println!("benchmark record -> {bench_path}");

    if !gates.failures.is_empty() {
        eprintln!("\n{} E-DEBUG gate(s) failed:", gates.failures.len());
        for f in &gates.failures {
            eprintln!("  - {f}");
        }
        std::process::exit(1);
    }
    println!("\nall E-DEBUG gates passed");
}

/// Gate 4: every indexed query must equal the naive full scan.
fn query_gates(gates: &mut Gates, store: &TraceStore) {
    let events = store.events();
    let first = events.first().map_or(0, |e| e.ts_ns);
    let lo = first + store.wall_ns() / 3;
    let hi = first + 2 * store.wall_ns() / 3;

    let fast = store.events_in(lo, hi);
    let naive: Vec<_> = events.iter().filter(|e| e.ts_ns >= lo && e.ts_ns < hi).collect();
    gates.check(
        "interval-query",
        fast.len() == naive.len()
            && fast.iter().zip(&naive).all(|(a, b)| a.ts_ns == b.ts_ns && a.tid == b.tid),
        &format!("indexed window returned {} events, scan {}", fast.len(), naive.len()),
    );

    for kind in ["task.spawn", "barrier.wait", "sched.steal"] {
        let indexed = store.kind_indices(kind).len();
        let scanned = events.iter().filter(|e| e.name() == kind).count();
        gates.check(
            &format!("kind-query-{kind}"),
            indexed == scanned,
            &format!("indexed {indexed} != scanned {scanned}"),
        );
    }
    let windowed = store.kind_indices_in("task.spawn", lo, hi).len();
    let windowed_naive = events
        .iter()
        .filter(|e| e.name() == "task.spawn" && e.ts_ns >= lo && e.ts_ns < hi)
        .count();
    gates.check(
        "kind-interval-query",
        windowed == windowed_naive,
        &format!("indexed {windowed} != scanned {windowed_naive}"),
    );

    let fast_spans: Vec<u64> = store.spans_overlapping(lo, hi).iter().map(|s| s.span.id).collect();
    let mut naive_spans: Vec<(u64, u64)> = store
        .spans()
        .filter(|s| s.span.start_ns < hi && s.span.end_ns >= lo)
        .map(|s| (s.span.start_ns, s.span.id))
        .collect();
    naive_spans.sort_unstable();
    gates.check(
        "overlap-query",
        fast_spans == naive_spans.iter().map(|(_, id)| *id).collect::<Vec<_>>(),
        &format!(
            "overlap pruning returned {} spans, scan {}",
            fast_spans.len(),
            naive_spans.len()
        ),
    );
}

/// Gate 5: recording, replaying and diffing schedules is
/// deterministic, and time travel is position-consistent.
fn replay_gates(gates: &mut Gates) {
    let a = record_seeded("seed42-a", 42, 20_000, racy_body);
    let b = record_seeded("seed42-b", 42, 20_000, racy_body);
    gates.check("recording-completes", a.completed, a.verdict());
    gates.check(
        "same-seed-fingerprint",
        a.fingerprint() == b.fingerprint(),
        "same seed produced different recordings",
    );
    let same = diff_schedules(&a, &b);
    gates.check("same-seed-diff-empty", same.is_empty(), &same.render());

    let replayed = replay("seed42-replay", racy_body, &a.schedule);
    gates.check(
        "replay-reproduces",
        diff_schedules(&a, &replayed).is_empty() && replayed.completed,
        "replaying the recorded schedule did not reproduce the run",
    );

    let divergent = (43..128)
        .map(|seed| record_seeded("hunt", seed, 20_000, racy_body))
        .find(|r| r.schedule != a.schedule);
    match divergent {
        None => gates.check("divergent-seed-found", false, "no seed in 43..128 diverged"),
        Some(d) => {
            let diff = diff_schedules(&a, &d);
            let at = diff.first_divergence;
            gates.check(
                "diff-pinpoints-divergence",
                !diff.is_empty()
                    && at.is_some_and(|at| a.steps[..at] == d.steps[..at])
                    && diff.a_step.is_some(),
                "diff failed to locate the first divergent decision",
            );
            println!("{}", diff.render());
        }
    }

    let total = a.len();
    let mut tt = TimeTravel::new(a, racy_body);
    tt.seek(0);
    let start_ok = tt.at_start() && tt.state().steps.is_empty() && !tt.state().frontier.is_empty();
    gates.check("time-travel-start", start_ok, "position 0 must be empty with a frontier");
    for _ in 0..total {
        tt.forward();
    }
    gates.check(
        "time-travel-forward",
        tt.at_end() && tt.state().steps.len() == total && tt.state().completed,
        &format!("walked to {}/{} steps", tt.state().steps.len(), total),
    );
    tt.back();
    gates.check(
        "time-travel-back",
        tt.cursor() == total - 1 && tt.state().steps.len() == total - 1,
        "stepping back must re-execute the shorter prefix",
    );
    println!("\n{}", tt.render());
}

/// A synthetic ~480k-event trace: 4 lanes of spawn-marked task spans.
fn synthetic_trace() -> Trace {
    let collector = Collector::with_thread_capacity(1 << 19);
    let handle = collector.handle();
    let pid = handle.register_track("bench");
    std::thread::scope(|scope| {
        for lane in 0u64..4 {
            let handle = handle.clone();
            scope.spawn(move || {
                for i in 0..30_000u64 {
                    let task = (lane << 32) | i;
                    handle.mark(pid, MarkKind::TaskSpawn { task, parent_span: 0 });
                    let span = handle.span(pid, SpanKind::TaskRun { task });
                    handle.mark(
                        pid,
                        MarkKind::Steal { victim: (lane as u32 + 1) % 4 },
                    );
                    drop(span);
                }
            });
        }
    });
    collector.snapshot()
}

/// Store-build, graph-build and query throughput, recorded as JSON.
fn bench_throughput() -> String {
    let trace = synthetic_trace();
    let events = trace.len();

    let t0 = Instant::now();
    let store = TraceStore::new(trace);
    let build_s = t0.elapsed().as_secs_f64().max(1e-9);

    let t1 = Instant::now();
    let graph = TaskGraph::build(&store);
    let _report = CriticalReport::analyze(&store, &graph);
    let graph_s = t1.elapsed().as_secs_f64().max(1e-9);

    let first = store.events().first().map_or(0, |e| e.ts_ns);
    let wall = store.wall_ns().max(1);
    let mut rng = Xoshiro256::seed_from_u64(0xE0_DEB6);
    let queries = 2_000u64;
    let mut touched = 0u64;
    let t2 = Instant::now();
    for _ in 0..queries {
        let a = first + rng.next_below(wall);
        let b = first + rng.next_below(wall);
        let (lo, hi) = (a.min(b), a.max(b));
        touched += store.events_in(lo, hi).len() as u64;
        touched += store.kind_indices_in("task.spawn", lo, hi).len() as u64;
    }
    let query_s = t2.elapsed().as_secs_f64().max(1e-9);

    let build_rate = events as f64 / build_s;
    let graph_rate = events as f64 / graph_s;
    let query_rate = queries as f64 / query_s;
    let touch_rate = touched as f64 / query_s;
    println!(
        "\nbench: {events} events — store build {build_rate:.0} ev/s, graph+path {graph_rate:.0} ev/s, \
         {query_rate:.0} queries/s ({touch_rate:.0} results/s)",
    );

    format!(
        concat!(
            "{{\n",
            "  \"bench\": \"inspect\",\n",
            "  \"events\": {},\n",
            "  \"graph_nodes\": {},\n",
            "  \"store_build_events_per_sec\": {:.1},\n",
            "  \"graph_build_events_per_sec\": {:.1},\n",
            "  \"interval_queries\": {},\n",
            "  \"queries_per_sec\": {:.1},\n",
            "  \"query_results_per_sec\": {:.1}\n",
            "}}\n"
        ),
        events,
        graph.node_count(),
        build_rate,
        graph_rate,
        queries,
        query_rate,
        touch_rate,
    )
}
