//! Project 1 extension: an image-processing pipeline using the filter
//! set, comparing sequential vs worksharing application — plus the
//! inverted-index extension of project 4.
//!
//! Run with: `cargo run --release --example image_pipeline`

use docsearch::corpus::{generate_tree, CorpusConfig};
use docsearch::InvertedIndex;
use imaging::filter::{apply_par, apply_seq, Filter2D};
use imaging::gen::{generate, Pattern};
use parc_util::{Stopwatch, Table};
use softeng751::prelude::*;

fn main() {
    let team = Team::new(4);
    let rt = TaskRuntime::builder().workers(4).build();

    // --- Filters over a large synthetic image.
    let src = generate(Pattern::Plasma, 512, 384, 0xF17);
    let mut table = Table::new(
        "image filters on a 512x384 plasma (ms)",
        &["filter", "sequential", "pyjama", "identical"],
    );
    for f in [
        Filter2D::Grayscale,
        Filter2D::Brighten(30),
        Filter2D::BoxBlur(2),
        Filter2D::SobelEdges,
        Filter2D::Rotate90,
    ] {
        let sw = Stopwatch::start();
        let seq = apply_seq(&src, f);
        let seq_ms = sw.elapsed_ms();
        let sw = Stopwatch::start();
        let par = apply_par(&team, &src, f);
        let par_ms = sw.elapsed_ms();
        table.row(&[
            f.label(),
            format!("{seq_ms:.1}"),
            format!("{par_ms:.1}"),
            (seq.content_hash() == par.content_hash()).to_string(),
        ]);
    }
    println!("{}", table.render());

    // --- Inverted index: build in parallel, query instantly.
    let cfg = CorpusConfig {
        files_per_dir: 12,
        dirs_per_level: 3,
        depth: 2,
        lines_per_file: 80,
        ..CorpusConfig::default()
    };
    let (tree, _) = generate_tree(&cfg);
    let sw = Stopwatch::start();
    let index = InvertedIndex::build_par(&rt, &tree);
    let build_ms = sw.elapsed_ms();
    println!(
        "inverted index: {} files, {} distinct tokens, built in {:.1} ms",
        index.files.len(),
        index.vocabulary_size(),
        build_ms
    );
    for term in ["parallel", "task", "water"] {
        println!("  '{}' appears on {} (file,line) pairs", term, index.lookup(term).len());
    }
    let both = index.query_and(&["parallel", "task"]);
    println!(
        "  files containing BOTH 'parallel' and 'task': {} of {}",
        both.len(),
        index.files.len()
    );

    rt.shutdown();
}
