//! Experiment E-RACE: deterministic race verdicts for the whole
//! litmus catalogue, plus the explorer's throughput benchmark.
//!
//! For every entry in `parc_explore::litmus::catalogue()` this runs an
//! exhaustive DFS exploration and checks the verdict against ground
//! truth: racy variants must have a concrete racing schedule, fixed
//! variants must be race-free over the whole interleaving space. Any
//! mismatch exits non-zero, which is what the CI `explore` job gates
//! on.
//!
//! Artifacts (all under `--out`, default `target/artifacts/`):
//! * `race_explorer.traces.txt` — the full racing-schedule
//!   interleaving diagrams, uploaded by CI;
//! * `BENCH_explore.json` — the schedules-explored-per-second
//!   benchmark record.
//!
//! Run with: `cargo run --release --example race_explorer -- [--out DIR]`

use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use parc_explore::{explore, litmus, Config};
use parc_util::Table;

fn main() {
    let out_dir = parse_out_dir();
    std::fs::create_dir_all(&out_dir).expect("create artifact directory");
    let traces_path = out_dir.join("race_explorer.traces.txt");
    let bench_path = out_dir.join("BENCH_explore.json");

    println!("== E-RACE: deterministic interleaving exploration ==\n");

    let mut table = Table::new(
        "litmus verdicts (exhaustive DFS + happens-before)",
        &[
            "litmus",
            "expected",
            "verdict",
            "schedules",
            "pruned",
            "steps",
            "first race @",
        ],
    );
    let mut traces = String::new();
    let mut mismatches = 0usize;
    let mut total_executions = 0usize;
    let mut total_steps = 0usize;
    let started = Instant::now();

    for entry in litmus::catalogue() {
        let body = Arc::clone(&entry.body);
        let report = explore(Config::dfs(entry.name), move || body());
        assert!(report.exhausted, "{}: litmus space must be enumerable", entry.name);
        total_executions += report.schedule_log.len();
        total_steps += report.steps_total;

        let ok = report.race_free() != entry.expect_race;
        if !ok {
            mismatches += 1;
        }
        let first_race = match (report.first_race_schedule, report.first_race_depth) {
            (Some(s), Some(d)) => format!("sched {s}, step {d}"),
            _ => "-".to_string(),
        };
        table.row(&[
            entry.name.to_string(),
            if entry.expect_race { "race".to_string() } else { "race-free".to_string() },
            format!("{}{}", report.verdict(), if ok { "" } else { "  ** MISMATCH **" }),
            report.schedule_log.len().to_string(),
            report.pruned.to_string(),
            report.steps_total.to_string(),
            first_race,
        ]);

        let _ = writeln!(traces, "==== {} ====", entry.name);
        if report.races.is_empty() {
            let _ = writeln!(
                traces,
                "no race over {} explored schedules ({})\n",
                report.schedule_log.len(),
                report.verdict()
            );
        } else {
            for race in &report.races {
                let _ = writeln!(traces, "{}", race.render());
            }
        }
        for (key, values) in &report.observations {
            let rendered: Vec<String> = values.iter().map(ToString::to_string).collect();
            let _ = writeln!(traces, "observed {key} in {{{}}}", rendered.join(", "));
        }
        traces.push('\n');
    }

    let elapsed = started.elapsed();
    println!("{}", table.render());

    let schedules_per_sec = total_executions as f64 / elapsed.as_secs_f64().max(1e-9);
    let steps_per_sec = total_steps as f64 / elapsed.as_secs_f64().max(1e-9);
    println!(
        "explored {total_executions} schedules / {total_steps} steps in {:.1} ms  ({:.0} schedules/s, {:.0} steps/s)",
        elapsed.as_secs_f64() * 1e3,
        schedules_per_sec,
        steps_per_sec
    );

    std::fs::write(&traces_path, &traces).expect("write racing-schedule traces");
    println!("racing-schedule traces -> {}", traces_path.display());

    let bench = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"explore\",\n",
            "  \"litmus_tests\": {},\n",
            "  \"schedules_explored\": {},\n",
            "  \"steps_executed\": {},\n",
            "  \"elapsed_ms\": {:.3},\n",
            "  \"schedules_per_sec\": {:.1},\n",
            "  \"steps_per_sec\": {:.1}\n",
            "}}\n"
        ),
        litmus::catalogue().len(),
        total_executions,
        total_steps,
        elapsed.as_secs_f64() * 1e3,
        schedules_per_sec,
        steps_per_sec
    );
    std::fs::write(&bench_path, bench).expect("write BENCH_explore.json");
    println!("benchmark record -> {}", bench_path.display());

    if mismatches > 0 {
        eprintln!("\n{mismatches} litmus verdict(s) disagreed with ground truth");
        std::process::exit(1);
    }
    println!("\nall {} verdicts match ground truth", litmus::catalogue().len());
}

fn parse_out_dir() -> PathBuf {
    let mut out = PathBuf::from("target/artifacts");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => {
                out = PathBuf::from(args.next().expect("--out needs a directory"));
            }
            other => panic!("unknown argument {other:?} (expected --out DIR)"),
        }
    }
    out
}
