//! Project 8 (experiment E8): memory-model demonstrations — the
//! executable version of the students' pedagogical write-up.
//!
//! Run with: `cargo run --release --example memory_model_demos`

use memmodel::cost::{cost_strategies, increment_cost_ns, plain_increment_cost_ns};
use memmodel::demos;
use parc_util::Table;

fn main() {
    println!("== E8: memory-model demonstrations ==\n");

    // 1. Lost update.
    let racy = demos::lost_update(4, 50_000, true);
    println!(
        "lost-update (racy split increment, 4 threads x 50k):\n  observed {} / expected {} -> {} lost updates\n",
        racy.observed, racy.expected, racy.anomalies
    );
    for fix in [
        demos::FixStrategy::AtomicRmw,
        demos::FixStrategy::Mutex,
        demos::FixStrategy::SeqCst,
    ] {
        let fixed = demos::lost_update_fixed(4, 50_000, fix);
        println!(
            "  fixed with {:?}: observed {} / expected {} (anomalies {})",
            fix, fixed.observed, fixed.expected, fixed.anomalies
        );
    }

    // 2. Message passing.
    let mp_racy = demos::message_passing(500, false);
    let mp_fixed = demos::message_passing(500, true);
    println!(
        "\nmessage-passing litmus (500 rounds):\n  relaxed publication: {} stale reads (x86-TSO hosts rarely exhibit this; the *code* allows it)\n  release/acquire:     {} stale reads (forbidden by the model)",
        mp_racy.anomalies, mp_fixed.anomalies
    );

    // 3. Store buffer.
    let sb_relaxed = demos::store_buffer(1000, std::sync::atomic::Ordering::Relaxed);
    let sb_seqcst = demos::store_buffer(1000, std::sync::atomic::Ordering::SeqCst);
    println!(
        "\nstore-buffer litmus (1000 rounds):\n  relaxed: {} both-zero outcomes (permitted; the reordering even x86 shows)\n  SeqCst:  {} both-zero outcomes (must be 0)",
        sb_relaxed.anomalies, sb_seqcst.anomalies
    );

    // 4. Lazy init.
    let lazy_racy = demos::lazy_init(100, 4, false);
    let lazy_fixed = demos::lazy_init(100, 4, true);
    println!(
        "\nlazy-init (100 rounds x 4 threads):\n  racy check-then-act: {} extra constructions\n  OnceLock:            {} extra constructions",
        lazy_racy.anomalies, lazy_fixed.anomalies
    );

    // 5. The cost table (the pros/cons column).
    let mut table = Table::new(
        "what each fix costs (single-threaded ns/increment)",
        &["strategy", "ns/op"],
    );
    table.row(&["plain (no sync)".into(), format!("{:.2}", plain_increment_cost_ns(2_000_000))]);
    for fix in cost_strategies() {
        table.row(&[format!("{fix:?}"), format!("{:.2}", increment_cost_ns(fix, 2_000_000))]);
    }
    println!("\n{}", table.render());
    println!(
        "lesson (as in the students' write-up): correctness first — then pick the\n\
         cheapest primitive that gives it. Relaxed RMW < SeqCst RMW < mutex, and\n\
         a data race is never a price worth paying."
    );
}
